type op_result = {
  op_name : string;
  isl_us : float;
  tvm_us : float;
  novec_us : float;
  infl_us : float;
  influenced : bool;
  vec : bool;
}

let rows_equal (a : Scheduling.Schedule.t) (b : Scheduling.Schedule.t) =
  List.length a.Scheduling.Schedule.rows = List.length b.Scheduling.Schedule.rows
  && List.for_all2
       (fun (ra : Scheduling.Schedule.row) (rb : Scheduling.Schedule.row) ->
         List.length ra.exprs = List.length rb.exprs
         && List.for_all2
              (fun (sa, ea) (sb, eb) -> sa = sb && Polyhedra.Linexpr.equal ea eb)
              ra.exprs rb.exprs)
       a.Scheduling.Schedule.rows b.Scheduling.Schedule.rows

let rec has_vector_loop = function
  | Codegen.Ast.Stmts l -> List.exists has_vector_loop l
  | Codegen.Ast.If (_, b) -> has_vector_loop b
  | Codegen.Ast.Exec _ -> false
  | Codegen.Ast.VecExec _ -> true
  | Codegen.Ast.For l -> l.Codegen.Ast.step > 1 || has_vector_loop l.Codegen.Ast.body

let evaluate_op ?(machine = Gpusim.Machine.v100) ~name kernel =
  let isl_sched, _ = Scheduling.Scheduler.schedule kernel in
  let tree = Vectorizer.Treegen.influence_for kernel in
  let infl_sched, infl_stats = Scheduling.Scheduler.schedule ~influence:tree kernel in
  let time c = Gpusim.Sim.time_us (Gpusim.Sim.run ~machine c) in
  let isl_c = Codegen.Compile.lower ~vectorize:false isl_sched kernel in
  let novec_c = Codegen.Compile.lower ~vectorize:false infl_sched kernel in
  let infl_c = Codegen.Compile.lower ~vectorize:true ~vec_min_parallel:2048 infl_sched kernel in
  let tvm_us =
    List.fold_left
      (fun acc c -> acc +. time c)
      0.0
      (Baselines.Tvm.compile kernel)
  in
  let vec = has_vector_loop infl_c.Codegen.Compile.ast in
  let influenced =
    (not infl_stats.Scheduling.Scheduler.influence_abandoned)
    && ((not (rows_equal isl_sched infl_sched)) || vec)
  in
  { op_name = name;
    isl_us = time isl_c;
    tvm_us;
    novec_us = time novec_c;
    infl_us = time infl_c;
    influenced;
    vec
  }

let evaluate_suite ?machine ?(progress = fun _ -> ()) ops =
  List.map
    (fun (name, kernel) ->
      progress name;
      evaluate_op ?machine ~name kernel)
    ops

type aggregate = {
  total : int;
  vec_count : int;
  infl_count : int;
  isl_ms : float;
  tvm_ms : float;
  novec_ms : float;
  infl_ms : float;
  i_isl_ms : float;
  i_tvm_ms : float;
  i_novec_ms : float;
  i_infl_ms : float;
}

let aggregate results =
  let ms f = List.fold_left (fun acc r -> acc +. f r) 0.0 results /. 1000.0 in
  let infl_only = List.filter (fun r -> r.influenced) results in
  let ims f = List.fold_left (fun acc r -> acc +. f r) 0.0 infl_only /. 1000.0 in
  { total = List.length results;
    vec_count = List.length (List.filter (fun r -> r.vec) results);
    infl_count = List.length infl_only;
    isl_ms = ms (fun r -> r.isl_us);
    tvm_ms = ms (fun r -> r.tvm_us);
    novec_ms = ms (fun r -> r.novec_us);
    infl_ms = ms (fun r -> r.infl_us);
    i_isl_ms = ims (fun r -> r.isl_us);
    i_tvm_ms = ims (fun r -> r.tvm_us);
    i_novec_ms = ims (fun r -> r.novec_us);
    i_infl_ms = ims (fun r -> r.infl_us)
  }

let speedup isl x = if x > 0.0 then isl /. x else nan

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))
