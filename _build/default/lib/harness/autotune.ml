type choice = {
  tile : int option;
  time_us : float;
  compiled : Codegen.Compile.compiled;
}

let lower_with ?vectorize ?vec_min_parallel tile schedule kernel =
  match tile with
  | None -> Codegen.Compile.lower ?vectorize ?vec_min_parallel schedule kernel
  | Some s ->
    Codegen.Compile.lower ?vectorize ?vec_min_parallel
      ~tile_sizes:(fun _ -> Some s) schedule kernel

let sweep ?machine ?(candidates = [ 8; 16; 32 ]) ?vectorize schedule kernel =
  List.map
    (fun tile ->
      let c = lower_with ?vectorize tile schedule kernel in
      (tile, Gpusim.Sim.time_us (Gpusim.Sim.run ?machine c)))
    (None :: List.map Option.some candidates)

let tune ?machine ?(candidates = [ 8; 16; 32 ]) ?vectorize ?vec_min_parallel schedule
    kernel =
  let best =
    List.fold_left
      (fun acc tile ->
        let c = lower_with ?vectorize ?vec_min_parallel tile schedule kernel in
        let t = Gpusim.Sim.time_us (Gpusim.Sim.run ?machine c) in
        match acc with
        | Some (_, bt, _) when bt <= t -> acc
        | _ -> Some (tile, t, c))
      None
      (None :: List.map Option.some candidates)
  in
  match best with
  | Some (tile, time_us, compiled) -> { tile; time_us; compiled }
  | None -> assert false
