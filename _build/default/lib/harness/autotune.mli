(** Tile-size auto-tuning.

    The paper's evaluation notes that "tile sizes are selected by respective
    tool auto-tuners"; this module plays that role for the reproduction: it
    compiles a schedule with a set of candidate uniform tile sizes (plus the
    untiled variant), simulates each on the GPU model, and keeps the
    fastest. *)

type choice = {
  tile : int option;  (** [None] = untiled *)
  time_us : float;
  compiled : Codegen.Compile.compiled;
}

val tune :
  ?machine:Gpusim.Machine.t ->
  ?candidates:int list ->
  ?vectorize:bool ->
  ?vec_min_parallel:int ->
  Scheduling.Schedule.t ->
  Ir.Kernel.t ->
  choice
(** Grid-search over [candidates] (default [8; 16; 32]) and the untiled
    variant; ties favour simpler (untiled, then smaller) configurations. *)

val sweep :
  ?machine:Gpusim.Machine.t ->
  ?candidates:int list ->
  ?vectorize:bool ->
  Scheduling.Schedule.t ->
  Ir.Kernel.t ->
  (int option * float) list
(** All (tile, simulated microseconds) points, untiled first. *)
