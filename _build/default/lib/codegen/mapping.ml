open Polybase
open Polyhedra

type t = {
  block_dims : (int * int) list;
  thread_dims : (int * int) list;
}

let grid_blocks m = List.fold_left (fun acc (_, e) -> acc * e) 1 m.block_dims
let block_threads m = List.fold_left (fun acc (_, e) -> acc * e) 1 m.thread_dims

let thread_extent_of m dim = List.assoc_opt dim m.thread_dims

let const_of = function
  | [ e ] when Linexpr.is_const e -> Some (Linexpr.constant e)
  | _ -> None

(* Eligible dims with their trip counts: parallel (or parallel vector
   strips), constant bounds.  A dim can appear as several For nodes (split
   nests); we keep the largest trip. *)
let eligible_dims ast =
  let table : (int, int option) Hashtbl.t = Hashtbl.create 8 in
  let note dim extent =
    match Hashtbl.find_opt table dim with
    | Some None -> ()
    | Some (Some e) ->
      Hashtbl.replace table dim
        (match extent with Some e' -> Some (max e e') | None -> None)
    | None -> Hashtbl.replace table dim extent
  in
  let rec go = function
    | Ast.Stmts l -> List.iter go l
    | Ast.If (_, b) -> go b
    | Ast.Exec _ | Ast.VecExec _ -> ()
    | Ast.For l ->
      (match l.Ast.mark with
       | Ast.Parallel | Ast.Vectorized (_, true) -> (
         (* a parallel vectorized loop is mapped as a strip: one vector
            operation per thread; only the lanes are never split *)
         match (const_of l.Ast.lower, const_of l.Ast.upper) with
         | Some lo, Some hi ->
           let span = Bigint.to_int (Bigint.sub (Q.floor hi) (Q.ceil lo)) + 1 in
           let extent = (span + l.Ast.step - 1) / l.Ast.step in
           note l.Ast.dim (Some extent)
         | _ -> note l.Ast.dim l.Ast.trip_hint)
       | Ast.Seq_mark | Ast.Vectorized (_, false) | Ast.Block _ | Ast.Thread _
       | Ast.BlockThread _ ->
         note l.Ast.dim None);
      go l.Ast.body
  in
  go ast;
  Hashtbl.fold
    (fun dim extent acc -> match extent with Some e -> (dim, e) :: acc | None -> acc)
    table []
  |> List.sort compare

(* Innermost dims become thread axes while the budget lasts; a dim that
   overflows the remaining budget is strip-mined across a (block, thread)
   pair — the moral equivalent of AKG's tiling before mapping; leftover
   outer dims become block axes. *)
let compute ?(max_threads = 1024) ast =
  let dims = eligible_dims ast in
  let budget = ref max_threads in
  let threads = ref [] and blocks = ref [] in
  List.iter
    (fun (dim, extent) ->
      if List.length !threads < 3 && !budget > 1 then begin
        if extent <= !budget then begin
          threads := (dim, extent) :: !threads;
          budget := !budget / extent
        end
        else if List.length !blocks < 3 then begin
          let tpart = !budget in
          let bpart = (extent + tpart - 1) / tpart in
          threads := (dim, tpart) :: !threads;
          blocks := (dim, bpart) :: !blocks;
          budget := 1
        end
      end
      else if List.length !blocks < 3 then blocks := (dim, extent) :: !blocks)
    (List.rev dims);
  (* threads gathered innermost-first means the list head must stay the
     innermost dim: threadIdx.x drives coalescing *)
  let m = { block_dims = List.rev !blocks; thread_dims = List.rev !threads } in
  (* Occupancy rebalancing: with too few blocks the GPU cannot spread work
     over its SMs, so move factors of two from large thread extents to the
     block side (the effect of AKG's tiling).  threadIdx.x (head) is halved
     last to preserve coalescing width. *)
  let target_blocks = 128 in
  let rec rebalance m =
    if grid_blocks m >= target_blocks then m
    else begin
      let candidates =
        List.filter (fun (_, e) -> e >= 64 && e mod 2 = 0) m.thread_dims
      in
      match List.rev candidates with
      | [] -> m
      | (dim, _extent) :: _ ->
        let thread_dims =
          List.map (fun (d, e) -> if d = dim then (d, e / 2) else (d, e)) m.thread_dims
        in
        let block_dims =
          if List.mem_assoc dim m.block_dims then
            List.map (fun (d, e) -> if d = dim then (d, e * 2) else (d, e)) m.block_dims
          else m.block_dims @ [ (dim, 2) ]
        in
        if List.length block_dims > 3 then m
        else rebalance { block_dims; thread_dims }
    end
  in
  rebalance m

let apply m ast =
  let axis_of dims dim =
    let rec go i = function
      | [] -> None
      | (d, _) :: _ when d = dim -> Some i
      | _ :: r -> go (i + 1) r
    in
    go 0 dims
  in
  Ast.map_loops
    (fun loop ->
      match
        (axis_of m.block_dims loop.Ast.dim, axis_of m.thread_dims loop.Ast.dim)
      with
      | Some b, Some t -> { loop with Ast.mark = Ast.BlockThread (b, t) }
      | None, Some t -> { loop with Ast.mark = Ast.Thread t }
      | Some b, None -> { loop with Ast.mark = Ast.Block b }
      | None, None -> loop)
    ast

let pp fmt m =
  let part name dims =
    Format.fprintf fmt "%s<%s>" name
      (String.concat ","
         (List.map (fun (d, e) -> Printf.sprintf "t%d:%d" d e) dims))
  in
  part "grid" m.block_dims;
  Format.pp_print_string fmt " ";
  part "block" m.thread_dims
