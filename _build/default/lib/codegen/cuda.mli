(** CUDA-flavoured pretty printer for compiled kernels.

    Produces readable device pseudo-code (for documentation, examples and
    debugging); nothing is compiled by a real CUDA toolchain in this
    repository — execution happens on the {!Gpusim} performance model. *)

val emit : Compile.compiled -> string
