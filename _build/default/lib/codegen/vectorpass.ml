open Polybase
open Polyhedra

(* The treegen payload convention ("vec#<stmt>" -> "<iter>:<width>") is
   duplicated here rather than importing the vectorizer library: codegen is
   a backend and must not depend on the optimizer. *)
let annotation_of sched stmt =
  match Scheduling.Schedule.annotation sched ("vec#" ^ stmt) with
  | None -> None
  | Some v -> (
    match String.split_on_char ':' v with
    | [ iter; w ] -> Option.map (fun w -> (iter, w)) (int_of_string_opt w)
    | _ -> None)

let vector_dims sched kernel =
  List.filter_map
    (fun (s : Ir.Stmt.t) ->
      match annotation_of sched s.Ir.Stmt.name with
      | None -> None
      | Some (iter, width) ->
        (* find the schedule row that is exactly this iterator *)
        let rec find d =
          if d >= Scheduling.Schedule.dims sched then None
          else begin
            let e = Scheduling.Schedule.expr_for sched ~dim:d ~stmt:s.Ir.Stmt.name in
            if Linexpr.equal e (Linexpr.var iter) then Some d else find (d + 1)
          end
        in
        Option.map (fun d -> (s.Ir.Stmt.name, d, width)) (find 0))
    kernel.Ir.Kernel.stmts

let const_bound = function
  | [ e ] when Linexpr.is_const e -> Some (Linexpr.constant e)
  | _ -> None

let rec no_inner_for = function
  | Ast.For _ -> false
  | Ast.Stmts l -> List.for_all no_inner_for l
  | Ast.If (_, b) -> no_inner_for b
  | Ast.Exec _ | Ast.VecExec _ -> true

(* Statements under the loop, split into unguarded and guarded-on-var. *)
let rec collect_execs var = function
  | Ast.Stmts l -> List.concat_map (collect_execs var) l
  | Ast.For _ -> []
  | Ast.If (cs, b) ->
    let guards_var =
      List.filter (fun (c : Constr.t) -> not (Q.is_zero (Linexpr.coef c.expr var))) cs
    in
    List.map
      (fun (name, g) -> (name, g @ List.map (fun c -> (c : Constr.t)) guards_var))
      (collect_execs var b)
  | Ast.Exec e -> [ (e.Ast.stmt, []) ]
  | Ast.VecExec (e, _) -> [ (e.Ast.stmt, []) ]

let rec vectorize_body width var = function
  | Ast.Stmts l -> Ast.Stmts (List.map (vectorize_body width var) l)
  | Ast.For l -> Ast.For l (* unreachable: checked by no_inner_for *)
  | Ast.If (cs, b) ->
    let guarded_on_var =
      List.exists (fun (c : Constr.t) -> not (Q.is_zero (Linexpr.coef c.expr var))) cs
    in
    if guarded_on_var then Ast.If (cs, b) (* stays scalar, fires on lane 0 *)
    else Ast.If (cs, vectorize_body width var b)
  | Ast.Exec e -> Ast.VecExec (e, width)
  | Ast.VecExec (e, w) -> Ast.VecExec (e, w)

(* product of the (constant) extents of all parallel loops, one factor per
   schedule dimension: the kernel's thread-parallel capacity *)
let parallel_capacity ast =
  let table : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let rec go = function
    | Ast.Stmts l -> List.iter go l
    | Ast.If (_, b) -> go b
    | Ast.Exec _ | Ast.VecExec _ -> ()
    | Ast.For l ->
      (match l.Ast.mark with
       | Ast.Parallel -> (
         match (const_bound l.Ast.lower, const_bound l.Ast.upper) with
         | Some lo, Some hi ->
           let e = Bigint.to_int (Bigint.sub (Q.floor hi) (Q.ceil lo)) + 1 in
           let cur = Option.value ~default:1 (Hashtbl.find_opt table l.Ast.dim) in
           Hashtbl.replace table l.Ast.dim (max cur e)
         | _ -> ())
       | _ -> ());
      go l.Ast.body
  in
  go ast;
  Hashtbl.fold (fun _ e acc -> acc * e) table 1

let apply ?(min_parallel = 0) sched kernel ast =
  let plan = vector_dims sched kernel in
  if plan = [] then ast
  else begin
    let deps = Deps.Analysis.dependences kernel in
    let capacity = parallel_capacity ast in
    Ast.map_loops
      (fun loop ->
        if loop.Ast.step <> 1 then loop
        else begin
          let execs = collect_execs loop.Ast.var loop.Ast.body in
          let unguarded = List.filter (fun (_, g) -> g = []) execs in
          let guarded = List.filter (fun (_, g) -> g <> []) execs in
          let widths =
            List.map
              (fun (name, _) ->
                match List.find_opt (fun (n, d, _) -> n = name && d = loop.Ast.dim) plan with
                | Some (_, _, w) -> w
                | None -> 1)
              unguarded
          in
          let ok_widths = unguarded <> [] && List.for_all (fun w -> w > 1) widths in
          if not (ok_widths && no_inner_for loop.Ast.body) then loop
          else begin
            let width = List.fold_left min 4 widths in
            let stmts = Ast.stmts_of loop.Ast.body in
            (* Lane expansion keeps each statement's lanes in order and runs
               body items in body order, so the only reorderings are
               (later body item, lower lane) vs (earlier body item, higher
               lane): a dependence is endangered only when it is carried at
               this dimension AND flows from a later body item to an
               earlier one. *)
            let position s =
              let rec go i = function
                | [] -> max_int
                | x :: _ when x = s -> i
                | _ :: r -> go (i + 1) r
              in
              go 0 stmts
            in
            let safe_order =
              List.for_all
                (fun (dep : Deps.Dependence.t) ->
                  (not (Deps.Dependence.is_validity dep))
                  || (not (List.mem dep.source stmts))
                  || (not (List.mem dep.target stmts))
                  || dep.source = dep.target
                  || position dep.source <= position dep.target
                  || not (Marks.dep_carried sched kernel dep ~dim:loop.Ast.dim))
                deps
            in
            let bounds_ok =
              match (const_bound loop.Ast.lower, const_bound loop.Ast.upper) with
              | Some lo, Some hi ->
                let extent =
                  Bigint.to_int (Bigint.sub (Q.floor hi) (Q.ceil lo)) + 1
                in
                extent mod width = 0
                (* guarded statements must fire on a lane-0-aligned value *)
                && List.for_all
                     (fun (_, gs) ->
                       List.for_all
                         (fun (c : Constr.t) ->
                           c.kind = Constr.Eq
                           &&
                           let a = Linexpr.coef c.expr loop.Ast.var in
                           let rest = Linexpr.add_term (Q.neg a) loop.Ast.var c.expr in
                           Linexpr.is_const rest
                           &&
                           let v = Q.div (Linexpr.constant rest) (Q.neg a) in
                           Q.is_integer v && Q.to_int v mod width = 0)
                         gs)
                     guarded
              | _ -> false
            in
            if not (safe_order && bounds_ok) then loop
            else begin
              let strip_parallel =
                Marks.loop_is_parallel sched kernel deps ~dim:loop.Ast.dim ~stmts
              in
              (* Profitability: widening a parallel loop divides the thread
                 supply by the width; refuse when the kernel would no longer
                 fill the machine (vector lanes of a sequential loop cost no
                 parallelism). *)
              if strip_parallel && capacity / width < min_parallel then loop
              else
                { loop with
                  Ast.step = width;
                  mark = Ast.Vectorized (width, strip_parallel);
                  body = vectorize_body width loop.Ast.var loop.Ast.body
                }
            end
          end
        end)
      ast
  end
