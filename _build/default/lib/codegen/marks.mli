(** Per-loop parallelism refinement.

    The schedule's per-dimension coincidence flag is computed jointly over
    all statements; after code generation a loop may enclose only a subset
    of statements (statement interleaving splits nests) and be parallel for
    that subset even when the dimension was not globally coincident.  This
    pass recomputes the mark per [For] node from the dependences among the
    statements it actually encloses. *)

val refine : Scheduling.Schedule.t -> Ir.Kernel.t -> Ast.t -> Ast.t

val loop_is_parallel :
  Scheduling.Schedule.t -> Ir.Kernel.t -> Deps.Dependence.t list -> dim:int ->
  stmts:string list -> bool
(** Whether dimension [dim] carries no validity dependence among [stmts],
    given equal schedule prefixes (exposed for the vectorization pass). *)

val dep_carried :
  Scheduling.Schedule.t -> Ir.Kernel.t -> Deps.Dependence.t -> dim:int -> bool
(** Whether a dependence relates instances with equal schedule prefixes but
    a strictly positive difference at [dim]. *)
