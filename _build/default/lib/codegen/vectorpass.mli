(** Backend explicit-vectorization pass (the second AKG modification of
    Section V).

    Rewrites loops that the influence tree prepared (via schedule
    annotations) into strided loops whose statement instances execute
    [width] lanes per step with explicit vector loads/stores.  A loop is
    rewritten only when it is safe and profitable:

    - every unguarded statement under the loop carries a vectorization
      annotation for this dimension;
    - multi-statement loops must not carry a dependence at this dimension
      (single-statement loops may: lanes execute in order);
    - guards on the loop variable must be equalities pinning a
      lane-0-aligned value (such statements stay scalar);
    - the loop has unit step, constant bounds, and an extent divisible by
      the chosen width (the minimum across statements). *)

val apply :
  ?min_parallel:int -> Scheduling.Schedule.t -> Ir.Kernel.t -> Ast.t -> Ast.t
(** [min_parallel] (default 0 = always) refuses rewrites that would leave
    fewer than that many parallel iterations to map on threads. *)

val vector_dims : Scheduling.Schedule.t -> Ir.Kernel.t -> (string * int * int) list
(** Per-statement [(stmt, schedule_dim, width)] vectorization plan derived
    from the schedule annotations. *)
