(** CUDA block/thread mapping.

    Selects which (parallel, constant-bound, non-vectorized) schedule
    dimensions become [blockIdx] and [threadIdx] axes and stamps the marks
    into the AST.  Following the paper's first AKG modification, dimensions
    rewritten by the vectorization pass are never considered for mapping. *)

type t = {
  block_dims : (int * int) list;  (** (schedule dim, extent), outermost first *)
  thread_dims : (int * int) list;
      (** (schedule dim, extent); the first entry is threadIdx.x, the
          fastest-varying lane axis that memory coalescing depends on *)
}

val grid_blocks : t -> int
val block_threads : t -> int

val thread_extent_of : t -> int -> int option
(** Thread-extent of a schedule dim (present for thread and strip-mined
    dims). *)

val compute : ?max_threads:int -> Ast.t -> t
(** Policy: the innermost eligible parallel loops become thread axes while
    the extent product stays within [max_threads] (default 1024, at most 3
    axes); a dim overflowing the remaining budget is strip-mined across a
    (block, thread) pair; remaining outer parallel loops become block
    axes. *)

val apply : t -> Ast.t -> Ast.t
(** Stamps [Block]/[Thread] marks onto the corresponding [For] nodes. *)

val pp : Format.formatter -> t -> unit
