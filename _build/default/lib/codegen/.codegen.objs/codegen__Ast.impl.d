lib/codegen/ast.ml: Constr Format Linexpr List Polyhedra Printf String
