lib/codegen/compile.mli: Ast Ir Mapping Scheduling
