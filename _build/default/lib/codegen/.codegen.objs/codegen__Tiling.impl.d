lib/codegen/tiling.ml: Ast Constr Deps Linexpr List Polybase Polyhedra Polyhedron Printf Q Scheduling
