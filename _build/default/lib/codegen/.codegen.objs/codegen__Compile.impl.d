lib/codegen/compile.ml: Ast Gen Ir Mapping Marks Scheduling Tiling Vectorpass
