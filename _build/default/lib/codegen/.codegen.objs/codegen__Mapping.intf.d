lib/codegen/mapping.mli: Ast Format
