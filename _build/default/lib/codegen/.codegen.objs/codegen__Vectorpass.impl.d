lib/codegen/vectorpass.ml: Ast Bigint Constr Deps Hashtbl Ir Linexpr List Marks Option Polybase Polyhedra Q Scheduling String
