lib/codegen/marks.mli: Ast Deps Ir Scheduling
