lib/codegen/ast.mli: Constr Format Linexpr Polyhedra
