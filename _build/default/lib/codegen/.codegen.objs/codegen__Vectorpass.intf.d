lib/codegen/vectorpass.mli: Ast Ir Scheduling
