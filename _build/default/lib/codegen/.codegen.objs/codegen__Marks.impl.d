lib/codegen/marks.ml: Ast Constr Deps List Polybase Polyhedra Polyhedron Q Scheduling
