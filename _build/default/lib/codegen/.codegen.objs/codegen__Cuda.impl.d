lib/codegen/cuda.ml: Access Array Ast Buffer Compile Constr Expr Format Ir Kernel Linexpr List Mapping Polyhedra Printf Stmt String Tensor
