lib/codegen/tiling.mli: Ast Deps Ir Scheduling
