lib/codegen/gen.ml: Array Ast Bigint Constr Ir Kernel Linalg Linexpr List Polybase Polyhedra Polyhedron Q Scheduling Stmt
