lib/codegen/gen.mli: Ast Ir Polyhedra Scheduling
