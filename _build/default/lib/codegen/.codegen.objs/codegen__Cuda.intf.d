lib/codegen/cuda.mli: Compile
