lib/codegen/mapping.ml: Ast Bigint Format Hashtbl Linexpr List Polybase Polyhedra Printf Q String
