(** Polyhedral AST generation: schedule + kernel -> loop AST.

    A simplified Quillere-style generator specialized to the schedules this
    repository produces: scalar (constant) schedule rows split statements
    into ordered sequences; loop rows become [For] nodes whose bounds come
    from Fourier-Motzkin projection of each statement's transformed domain,
    with per-statement guards when the statements under a fused loop do not
    share bounds.  Statement iterators are recovered by inverting the
    (full-rank) iterator part of the schedule. *)

val generate : Scheduling.Schedule.t -> Ir.Kernel.t -> Ast.t
(** @raise Failure if a statement's schedule is not full-rank (the
    scheduler guarantees it is). *)

val iter_map_for :
  Scheduling.Schedule.t -> Ir.Stmt.t -> (string * Polyhedra.Linexpr.t) list
(** The inverse schedule of one statement: original iterators as affine
    expressions of the loop variables [t0, t1, ...] (exposed for tests). *)
