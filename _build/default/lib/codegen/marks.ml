open Polybase
open Polyhedra

let dep_carried sched kernel (dep : Deps.Dependence.t) ~dim =
  let ds = Scheduling.Builders.init_dep_state kernel dep in
  let rel = ref dep.rel in
  for d = 0 to dim - 1 do
    let src_expr = Scheduling.Schedule.expr_for sched ~dim:d ~stmt:dep.source in
    let tgt_expr = Scheduling.Schedule.expr_for sched ~dim:d ~stmt:dep.target in
    let delta = Scheduling.Builders.delta_concrete ds ~src_expr ~tgt_expr in
    rel := Polyhedron.add_constraint !rel (Constr.eq0 delta)
  done;
  let src_expr = Scheduling.Schedule.expr_for sched ~dim ~stmt:dep.source in
  let tgt_expr = Scheduling.Schedule.expr_for sched ~dim ~stmt:dep.target in
  let delta = Scheduling.Builders.delta_concrete ds ~src_expr ~tgt_expr in
  match Polyhedron.maximum !rel delta with
  | `Empty -> false
  | `Value v -> Q.sign v > 0
  | `Unbounded -> true

let loop_is_parallel sched kernel deps ~dim ~stmts =
  let relevant =
    List.filter
      (fun (d : Deps.Dependence.t) ->
        Deps.Dependence.is_validity d && List.mem d.source stmts && List.mem d.target stmts)
      deps
  in
  List.for_all (fun dep -> not (dep_carried sched kernel dep ~dim)) relevant

let refine sched kernel ast =
  let deps = Deps.Analysis.dependences kernel in
  Ast.map_loops
    (fun loop ->
      match loop.Ast.mark with
      | Ast.Seq_mark | Ast.Parallel ->
        let stmts = Ast.stmts_of loop.Ast.body in
        let parallel =
          loop_is_parallel sched kernel deps ~dim:loop.Ast.dim ~stmts
        in
        { loop with Ast.mark = (if parallel then Ast.Parallel else Ast.Seq_mark) }
      | Ast.Vectorized _ | Ast.Block _ | Ast.Thread _ | Ast.BlockThread _ -> loop)
    ast
