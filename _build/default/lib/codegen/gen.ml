open Polybase
open Polyhedra
open Ir

type stmt_ctx = {
  stmt : Stmt.t;
  row_exprs : Linexpr.t array;  (* schedule rows for this statement *)
  proj : Polyhedron.t array;  (* proj.(d): transformed domain onto t0..td *)
  iter_map : (string * Linexpr.t) list;
  mutable guards : Constr.t list;
}

(* Invert the (full-rank) iterator part of the schedule: pick a set of rows
   whose iterator-coefficient vectors are linearly independent, solve the
   square system. *)
let iter_map_for sched (stmt : Stmt.t) =
  let iters = stmt.Stmt.iters in
  let n = List.length iters in
  let rows = List.mapi (fun d (r : Scheduling.Schedule.row) -> (d, List.assoc stmt.Stmt.name r.exprs)) sched.Scheduling.Schedule.rows in
  (* greedily select rows that increase the rank *)
  let selected = ref [] in
  List.iter
    (fun (d, e) ->
      if List.length !selected < n then begin
        let coefs = Array.of_list (List.map (fun it -> Linexpr.coef e it) iters) in
        let m = Array.of_list (List.rev_map (fun (_, _, c) -> c) !selected @ [ coefs ]) in
        if Linalg.rank m > List.length !selected then
          selected := (d, e, coefs) :: !selected
      end)
    rows;
  let selected = List.rev !selected in
  if List.length selected <> n then
    failwith ("Gen: schedule of " ^ stmt.Stmt.name ^ " is not full-rank");
  let m = Array.of_list (List.map (fun (_, _, c) -> c) selected) in
  let minv =
    match Linalg.inverse m with
    | Some inv -> inv
    | None -> failwith "Gen: selected rows not invertible"
  in
  (* i = M^-1 (t_sel - shift), where shift is the non-iterator part of the
     selected rows (constants and parameters). *)
  let t_minus_shift =
    List.map
      (fun (d, e, _) ->
        let shift =
          List.fold_left (fun acc it -> Linexpr.subst it Linexpr.zero acc) e iters
        in
        Linexpr.sub (Linexpr.var (Ast.loop_var d)) shift)
      selected
  in
  List.mapi
    (fun i it ->
      let expr =
        List.fold_left2
          (fun acc coeff rhs -> Linexpr.add acc (Linexpr.scale coeff rhs))
          Linexpr.zero
          (Array.to_list minv.(i))
          t_minus_shift
      in
      (it, expr))
    iters

let make_ctx sched (stmt : Stmt.t) =
  let m = Scheduling.Schedule.dims sched in
  let row_exprs =
    Array.init m (fun d -> Scheduling.Schedule.expr_for sched ~dim:d ~stmt:stmt.Stmt.name)
  in
  let full =
    (* domain /\ t_d = theta_d(i), then eliminate the iterators *)
    let eqs =
      List.init m (fun d ->
          Constr.eq (Linexpr.var (Ast.loop_var d)) row_exprs.(d))
    in
    let with_t = List.fold_left Polyhedron.add_constraint stmt.Stmt.domain eqs in
    Polyhedron.project_out stmt.Stmt.iters with_t
  in
  let proj = Array.make m full in
  (* proj.(d) keeps only t0..td *)
  for d = m - 2 downto 0 do
    proj.(d) <- Polyhedron.project_out [ Ast.loop_var (d + 1) ] proj.(d + 1)
  done;
  { stmt; row_exprs; proj; iter_map = iter_map_for sched stmt; guards = [] }

(* Lower/upper bound expressions of [t_d] from a projection polyhedron. *)
let bounds_of proj_d td =
  let lo = ref [] and hi = ref [] in
  List.iter
    (fun (c : Constr.t) ->
      let a = Linexpr.coef c.expr td in
      if not (Q.is_zero a) then begin
        let rest = Linexpr.add_term (Q.neg a) td c.expr in
        let bound = Linexpr.scale (Q.neg (Q.inv a)) rest in
        match c.kind with
        | Constr.Ge ->
          if Q.sign a > 0 then lo := bound :: !lo else hi := bound :: !hi
        | Constr.Eq ->
          lo := bound :: !lo;
          hi := bound :: !hi
      end)
    (Polyhedron.constraints proj_d);
  let canon l = List.sort_uniq Linexpr.compare l in
  (canon !lo, canon !hi)

let same_bounds (a : Linexpr.t list) b =
  List.length a = List.length b && List.for_all2 Linexpr.equal a b

let numeric_bound proj_d td ~maximize =
  let v = Linexpr.var td in
  let r = if maximize then Polyhedron.maximum proj_d v else Polyhedron.minimum proj_d v in
  match r with
  | `Value q -> if maximize then Q.floor q else Q.ceil q
  | `Unbounded -> failwith "Gen: unbounded loop dimension"
  | `Empty -> failwith "Gen: empty statement projection"

let original_position kernel name = Kernel.stmt_position kernel name

let generate sched kernel =
  let m = Scheduling.Schedule.dims sched in
  let ctxs = List.map (make_ctx sched) kernel.Kernel.stmts in
  let rec gen d (group : stmt_ctx list) =
    if d >= m then begin
      (* all dimensions fixed: emit statement instances in original order *)
      let ordered =
        List.sort
          (fun a b ->
            compare
              (original_position kernel a.stmt.Stmt.name)
              (original_position kernel b.stmt.Stmt.name))
          group
      in
      let exec ctx =
        let e = Ast.Exec { Ast.stmt = ctx.stmt.Stmt.name; iter_map = ctx.iter_map } in
        match ctx.guards with [] -> e | gs -> Ast.If (List.rev gs, e)
      in
      match List.map exec ordered with
      | [ one ] -> one
      | several -> Ast.Stmts several
    end
    else begin
      let td = Ast.loop_var d in
      let all_const =
        List.for_all (fun c -> Linexpr.is_const c.row_exprs.(d)) group
      in
      if all_const then begin
        (* pure sequencing: partition by the constant date *)
        let keyed =
          List.map (fun c -> (Linexpr.constant c.row_exprs.(d), c)) group
        in
        let keys = List.sort_uniq Q.compare (List.map fst keyed) in
        let parts =
          List.map
            (fun k -> List.filter_map (fun (k', c) -> if Q.equal k k' then Some c else None) keyed)
            keys
        in
        match List.map (gen (d + 1)) parts with
        | [ one ] -> one
        | several -> Ast.Stmts several
      end
      else begin
        let per_stmt = List.map (fun c -> (c, bounds_of c.proj.(d) td)) group in
        let (_, (lo0, hi0)) = List.hd per_stmt in
        let shared =
          List.for_all (fun (_, (lo, hi)) -> same_bounds lo lo0 && same_bounds hi hi0) per_stmt
        in
        let lower, upper =
          if shared then (lo0, hi0)
          else begin
            (* conservative rectangular hull + per-statement guards *)
            let los = List.map (fun (c, _) -> numeric_bound c.proj.(d) td ~maximize:false) per_stmt in
            let his = List.map (fun (c, _) -> numeric_bound c.proj.(d) td ~maximize:true) per_stmt in
            let glo = List.fold_left Bigint.min (List.hd los) (List.tl los) in
            let ghi = List.fold_left Bigint.max (List.hd his) (List.tl his) in
            let all_const es = List.for_all Linexpr.is_const es in
            List.iter2
              (fun (c, (lo, hi)) (nlo, nhi) ->
                (* No guard when the statement's own bounds are constants
                   that already span the hull; a single-point range becomes
                   an equality guard (what the vector pass understands). *)
                if all_const lo && all_const hi && Bigint.equal nlo glo && Bigint.equal nhi ghi
                then ()
                else if all_const lo && all_const hi && Bigint.equal nlo nhi then
                  c.guards <-
                    Constr.eq (Linexpr.var td) (Linexpr.const (Q.of_bigint nlo)) :: c.guards
                else begin
                  let own_lo = List.map (fun e -> Constr.geq (Linexpr.var td) e) lo in
                  let own_hi = List.map (fun e -> Constr.leq (Linexpr.var td) e) hi in
                  c.guards <- own_hi @ own_lo @ c.guards
                end)
              per_stmt
              (List.combine los his);
            ([ Linexpr.const (Q.of_bigint glo) ], [ Linexpr.const (Q.of_bigint ghi) ])
          end
        in
        let kind = (List.nth sched.Scheduling.Schedule.rows d).Scheduling.Schedule.kind in
        let mark =
          match kind with
          | Scheduling.Schedule.Loop { coincident = true } -> Ast.Parallel
          | Scheduling.Schedule.Loop { coincident = false } -> Ast.Seq_mark
          | Scheduling.Schedule.Scalar -> Ast.Seq_mark
        in
        Ast.For
          { Ast.var = td; lower; upper; step = 1; mark; dim = d; trip_hint = None;
            body = gen (d + 1) group }
      end
    end
  in
  gen 0 ctxs
