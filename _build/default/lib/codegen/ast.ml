open Polyhedra

type mark =
  | Seq_mark
  | Parallel
  | Vectorized of int * bool
  | Block of int
  | Thread of int
  | BlockThread of int * int

type t =
  | Stmts of t list
  | For of loop
  | If of Constr.t list * t
  | Exec of exec
  | VecExec of exec * int

and loop = {
  var : string;
  lower : Linexpr.t list;
  upper : Linexpr.t list;
  step : int;
  mark : mark;
  dim : int;
  trip_hint : int option;
  body : t;
}

and exec = {
  stmt : string;
  iter_map : (string * Linexpr.t) list;
}

let loop_var d = Printf.sprintf "t%d" d

let stmts_of t =
  let seen = ref [] in
  let rec go = function
    | Stmts l -> List.iter go l
    | For l -> go l.body
    | If (_, b) -> go b
    | Exec e | VecExec (e, _) ->
      if not (List.mem e.stmt !seen) then seen := e.stmt :: !seen
  in
  go t;
  List.rev !seen

let rec map_loops f = function
  | Stmts l -> Stmts (List.map (map_loops f) l)
  | For l ->
    let l = f l in
    For { l with body = map_loops f l.body }
  | If (cs, b) -> If (cs, map_loops f b)
  | (Exec _ | VecExec _) as e -> e

let rec exec_count = function
  | Stmts l -> List.fold_left (fun acc t -> acc + exec_count t) 0 l
  | For l -> exec_count l.body
  | If (_, b) -> exec_count b
  | Exec _ | VecExec _ -> 1

let mark_string = function
  | Seq_mark -> "for"
  | Parallel -> "forall"
  | Vectorized (w, par) -> Printf.sprintf "forvec<%d%s>" w (if par then ",par" else "")
  | Block a -> Printf.sprintf "forblock.%c" "xyz".[a]
  | Thread a -> Printf.sprintf "forthread.%c" "xyz".[a]
  | BlockThread (b, t) -> Printf.sprintf "forgrid.%c%c" "xyz".[b] "xyz".[t]

let bound_string which exprs =
  match exprs with
  | [ e ] -> Linexpr.to_string e
  | es ->
    Printf.sprintf "%s(%s)" which (String.concat ", " (List.map Linexpr.to_string es))

let rec pp_indented fmt indent t =
  let pad = String.make indent ' ' in
  match t with
  | Stmts l -> List.iter (pp_indented fmt indent) l
  | For l ->
    Format.fprintf fmt "%s%s (%s = %s; %s <= %s; %s += %d)@," pad (mark_string l.mark)
      l.var
      (bound_string "max" l.lower)
      l.var
      (bound_string "min" l.upper)
      l.var l.step;
    pp_indented fmt (indent + 2) l.body
  | If (cs, b) ->
    Format.fprintf fmt "%sif (%s)@," pad
      (String.concat " && " (List.map Constr.to_string cs));
    pp_indented fmt (indent + 2) b
  | Exec e ->
    Format.fprintf fmt "%s%s(%s)@," pad e.stmt
      (String.concat ", "
         (List.map (fun (i, x) -> i ^ "=" ^ Linexpr.to_string x) e.iter_map))
  | VecExec (e, w) ->
    Format.fprintf fmt "%s%s<vec%d>(%s)@," pad e.stmt w
      (String.concat ", "
         (List.map (fun (i, x) -> i ^ "=" ^ Linexpr.to_string x) e.iter_map))

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  pp_indented fmt 0 t;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
