type compiled = {
  kernel : Ir.Kernel.t;
  schedule : Scheduling.Schedule.t;
  ast : Ast.t;
  mapping : Mapping.t;
}

let lower ?(vectorize = true) ?vec_min_parallel ?tile_sizes ?max_threads schedule kernel =
  let ast = Gen.generate schedule kernel in
  let ast = Marks.refine schedule kernel ast in
  let ast =
    if vectorize then Vectorpass.apply ?min_parallel:vec_min_parallel schedule kernel ast
    else ast
  in
  let ast =
    match tile_sizes with
    | None -> ast
    | Some sizes -> Tiling.apply ~sizes schedule kernel ast
  in
  let mapping = Mapping.compute ?max_threads ast in
  let ast = Mapping.apply mapping ast in
  { kernel; schedule; ast; mapping }
