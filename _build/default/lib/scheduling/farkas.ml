open Polybase
open Polyhedra

let counter = ref 0

let fresh prefix =
  incr counter;
  Printf.sprintf "%s#%d" prefix !counter

let nonneg_on ~coef_of ~const p =
  let cs = Polyhedron.constraints p in
  (* One multiplier per constraint: non-negative for inequalities, free for
     equalities; plus the non-negative lambda_0 which we fold directly into
     the constant equation (turning it into an inequality). *)
  let tagged =
    List.map
      (fun (c : Constr.t) ->
        let lam = fresh (match c.kind with Constr.Ge -> "lam" | Constr.Eq -> "mu") in
        (lam, c))
      cs
  in
  let vars = Polyhedron.vars p in
  (* coefficient of x_v on the Farkas side: sum_j lam_j * a_{j,v} *)
  let farkas_coef v =
    List.fold_left
      (fun acc (lam, (c : Constr.t)) ->
        let a = Linexpr.coef c.expr v in
        if Q.is_zero a then acc else Linexpr.add_term a lam acc)
      Linexpr.zero tagged
  in
  let farkas_const =
    List.fold_left
      (fun acc (lam, (c : Constr.t)) ->
        let a = Linexpr.constant c.expr in
        if Q.is_zero a then acc else Linexpr.add_term a lam acc)
      Linexpr.zero tagged
  in
  let per_var =
    List.map (fun v -> Constr.eq (coef_of v) (farkas_coef v)) vars
  in
  (* const - sum_j lam_j * cst_j = lam_0 >= 0 *)
  let const_ineq = Constr.geq const farkas_const in
  let nonneg =
    List.filter_map
      (fun (lam, (c : Constr.t)) ->
        match c.kind with
        | Constr.Ge -> Some (Constr.lower_bound lam 0)
        | Constr.Eq -> None)
      tagged
  in
  let system = (const_ineq :: per_var) @ nonneg in
  let multipliers = List.map fst tagged in
  match Fourier_motzkin.eliminate_all multipliers system with
  | cs -> cs
  | exception Fourier_motzkin.Contradiction ->
    (* No coefficient assignment can make the function non-negative. *)
    [ Constr.ge0 (Linexpr.const_int (-1)) ]
