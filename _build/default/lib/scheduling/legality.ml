open Polybase
open Polyhedra

let check (sched : Schedule.t) kernel deps =
  let check_dep (dep : Deps.Dependence.t) =
    if not (Deps.Dependence.is_validity dep) then Ok ()
    else begin
      let ds = Builders.init_dep_state kernel dep in
      let rec go rows rel dim =
        if Polyhedron.is_empty rel then Ok ()
        else
          match rows with
          | [] ->
            Error
              (Printf.sprintf "dependence never strongly satisfied: %s"
                 (Deps.Dependence.to_string dep))
          | (row : Schedule.row) :: rest -> (
            let src_expr = List.assoc dep.source row.exprs in
            let tgt_expr = List.assoc dep.target row.exprs in
            let delta = Builders.delta_concrete ds ~src_expr ~tgt_expr in
            match Polyhedron.minimum rel delta with
            | `Empty -> Ok ()
            | `Unbounded ->
              Error
                (Printf.sprintf "dimension %d unbounded on %s" dim
                   (Deps.Dependence.to_string dep))
            | `Value v ->
              if Q.sign v < 0 then
                Error
                  (Printf.sprintf
                     "dimension %d schedules a target before its source (min delta %s): %s"
                     dim (Q.to_string v) (Deps.Dependence.to_string dep))
              else
                go rest (Polyhedron.add_constraint rel (Constr.eq0 delta)) (dim + 1))
      in
      go sched.Schedule.rows dep.rel 0
    end
  in
  let rec first_error = function
    | [] -> Ok ()
    | dep :: rest -> (
      match check_dep dep with Ok () -> first_error rest | Error e -> Error e)
  in
  first_error deps

let is_legal sched kernel deps = check sched kernel deps = Ok ()
