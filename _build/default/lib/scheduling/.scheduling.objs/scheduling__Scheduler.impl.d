lib/scheduling/scheduler.ml: Array Builders Constr Deps Hashtbl Ilp Influence Ir Linalg Linexpr List Logs Option Polybase Polyhedra Polyhedron Printf Q Schedule Space
