lib/scheduling/builders.ml: Array Constr Dependence Deps Farkas Ir Linalg Linexpr List Polybase Polyhedra Polyhedron Q Space
