lib/scheduling/scheduler.mli: Influence Ir Schedule
