lib/scheduling/influence.ml: Constr Format Linexpr List Polyhedra String
