lib/scheduling/builders.mli: Constr Dependence Deps Ir Linexpr Polybase Polyhedra Polyhedron Q
