lib/scheduling/legality.ml: Builders Constr Deps List Polybase Polyhedra Polyhedron Printf Q Schedule
