lib/scheduling/influence.mli: Constr Format Polyhedra
