lib/scheduling/space.ml: Printf String
