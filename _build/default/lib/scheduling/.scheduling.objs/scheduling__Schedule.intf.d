lib/scheduling/schedule.mli: Format Linexpr Polybase Polyhedra Q
