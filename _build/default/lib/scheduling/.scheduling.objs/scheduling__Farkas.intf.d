lib/scheduling/farkas.mli: Constr Linexpr Polyhedra Polyhedron
