lib/scheduling/space.mli:
