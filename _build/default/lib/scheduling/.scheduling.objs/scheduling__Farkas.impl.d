lib/scheduling/farkas.ml: Constr Fourier_motzkin Linexpr List Polybase Polyhedra Polyhedron Printf Q
