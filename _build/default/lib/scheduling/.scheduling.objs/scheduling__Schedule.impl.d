lib/scheduling/schedule.ml: Array Format Linexpr List Polyhedra Printf String
