lib/scheduling/legality.mli: Deps Ir Schedule
