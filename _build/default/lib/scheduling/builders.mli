(** Constraint builders for the influenced scheduling construction
    (Section IV-A): validity, coincidence, reuse-distance (proximity)
    bounds, progression, coefficient bounds and objective functions.

    All constraints are expressed over the {!Space} coefficient variables
    of one scheduling dimension; the scheduler assembles and solves them. *)

open Polybase
open Polyhedra
open Deps

(** Scheduling state of one dependence relation.

    [band_rel] is the relation used for validity within the current
    permutable band (snapshot at the band start); [active_rel] shrinks as
    dimensions are committed (intersection with zero-distance) and the
    dependence is strongly satisfied exactly when it becomes empty.
    [retired] marks dependences dropped from constraint construction at a
    band boundary. *)
type dep_state = {
  dep : Dependence.t;
  tgt_orig_iters : string list;
  mutable band_rel : Polyhedron.t;
  mutable active_rel : Polyhedron.t;
  mutable retired : bool;
}

val init_dep_state : Ir.Kernel.t -> Dependence.t -> dep_state

val is_satisfied : dep_state -> bool
(** Strongly satisfied: no pair of dependent instances is left with equal
    schedule prefix. *)

val delta_template :
  dim:int -> dep_state -> (string -> Linexpr.t) * Linexpr.t
(** The schedule-difference [phi_T(t) - phi_S(s)] at a dimension, as a
    coefficient template over the relation's variables: a function giving
    the (unknown-coefficient) multiplier of each relation variable, and the
    constant part.  Feeds {!Farkas.nonneg_on}. *)

val delta_concrete :
  dep_state -> src_expr:Linexpr.t -> tgt_expr:Linexpr.t -> Linexpr.t
(** The schedule difference for already-fixed schedule rows, as an affine
    expression over the relation's variables. *)

val validity : ?slack:string -> dim:int -> dep_state -> Constr.t list
(** Equation 1 (weak satisfaction, [delta >= 0]) over [band_rel]).  With
    [slack] the condition becomes [delta >= slack]: a 0/1 slack variable
    per dependence lets a Feautrier-style dimension maximize the number of
    strongly satisfied dependences. *)

val coincidence : dim:int -> dep_state -> Constr.t list
(** Zero reuse distance ([delta = 0]) over [active_rel] — the
    space-partition constraint of Lim and Lam. *)

val proximity : dim:int -> params:string list -> dep_state -> Constr.t list
(** Equation 2: [delta <= u . p + w] over [active_rel]. *)

val progression :
  ?negate:bool -> dim:int -> stmt:Ir.Stmt.t -> prev_iter_rows:Q.t array array ->
  unit -> Constr.t list option
(** Equations 3 and 4.  [None] when the statement's schedule is already
    full-rank (no further constraint: the row may be trivial).  The
    orthogonal-subspace basis orientation is arbitrary and equation 4 keeps
    only its non-negative cone; [negate] flips the basis, the scheduler's
    last resort when the default cone excludes every valid row (the
    over-constraining the paper acknowledges in Section IV-A3). *)

val var_bounds :
  dim:int -> stmts:Ir.Stmt.t list -> params:string list -> coef_bound:int ->
  const_bound:int -> Constr.t list

val objectives :
  dim:int -> stmts:Ir.Stmt.t list -> params:string list -> Linexpr.t list
(** Lexicographic objectives: isl's [(sum u, w)] proximity cost (equation 2
    footnote), then parameter-coefficient sums, constant sums, and a
    position-weighted iterator-coefficient sum whose effect is to prefer
    the original loop order among otherwise equivalent solutions (the
    documented tendency of isl this work compares against). *)

val ilp_vars :
  dim:int -> stmts:Ir.Stmt.t list -> params:string list -> string list
(** The coefficient variables of one dimension (the integer variables of
    the per-dimension ILP). *)
