type coeff =
  | Iter of string
  | Param of string
  | Const

(* '#' cannot occur in statement/iterator identifiers, which keeps the
   encoding unambiguous. *)
let coef_var ~stmt ~dim coeff =
  let what =
    match coeff with
    | Iter x -> "it:" ^ x
    | Param p -> "par:" ^ p
    | Const -> "cst"
  in
  Printf.sprintf "c#%s#%d#%s" stmt dim what

let bound_w = "w#"
let bound_u p = "u#" ^ p

let parse_coef_var v =
  match String.split_on_char '#' v with
  | [ "c"; stmt; dim; what ] -> (
    match int_of_string_opt dim with
    | None -> None
    | Some d -> (
      match String.index_opt what ':' with
      | None -> if what = "cst" then Some (stmt, d, Const) else None
      | Some i ->
        let kind = String.sub what 0 i in
        let name = String.sub what (i + 1) (String.length what - i - 1) in
        (match kind with
         | "it" -> Some (stmt, d, Iter name)
         | "par" -> Some (stmt, d, Param name)
         | _ -> None)))
  | _ -> None
