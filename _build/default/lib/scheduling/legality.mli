(** Semantic validation of schedules against dependence relations.

    A schedule is legal when every (validity) dependence is strongly
    satisfied: the target instance is scheduled at a lexicographically
    strictly later date than the source instance, for every dependent pair.
    Used by the test-suite as an oracle independent of the scheduler's own
    constraint construction. *)

val check :
  Schedule.t -> Ir.Kernel.t -> Deps.Dependence.t list -> (unit, string) result
(** [Error msg] pinpoints the first dependence violated (scheduled backwards
    or never strictly separated). *)

val is_legal : Schedule.t -> Ir.Kernel.t -> Deps.Dependence.t list -> bool
