open Polybase
open Polyhedra
open Deps

type dep_state = {
  dep : Dependence.t;
  tgt_orig_iters : string list;
  mutable band_rel : Polyhedron.t;
  mutable active_rel : Polyhedron.t;
  mutable retired : bool;
}

let init_dep_state kernel (dep : Dependence.t) =
  let tgt = Ir.Kernel.stmt kernel dep.target in
  { dep;
    tgt_orig_iters = tgt.Ir.Stmt.iters;
    band_rel = dep.rel;
    active_rel = dep.rel;
    retired = false
  }

let is_satisfied ds = Polyhedron.is_empty ds.active_rel

(* Relation variables are source iterators, target iterators (possibly
   renamed) and shared parameters.  [delta = phi_T(t) - phi_S(s)]. *)
let delta_template ~dim ds =
  let dep = ds.dep in
  let src = dep.source and tgt = dep.target in
  let tgt_assoc = List.combine dep.tgt_iters ds.tgt_orig_iters in
  let coef_of v =
    match List.assoc_opt v tgt_assoc with
    | Some orig -> Linexpr.var (Space.coef_var ~stmt:tgt ~dim (Space.Iter orig))
    | None ->
      if List.mem v dep.src_iters then
        Linexpr.var ~coef:Q.minus_one (Space.coef_var ~stmt:src ~dim (Space.Iter v))
      else
        (* shared parameter *)
        Linexpr.sub
          (Linexpr.var (Space.coef_var ~stmt:tgt ~dim (Space.Param v)))
          (Linexpr.var (Space.coef_var ~stmt:src ~dim (Space.Param v)))
  in
  let const =
    Linexpr.sub
      (Linexpr.var (Space.coef_var ~stmt:tgt ~dim Space.Const))
      (Linexpr.var (Space.coef_var ~stmt:src ~dim Space.Const))
  in
  (coef_of, const)

let delta_concrete ds ~src_expr ~tgt_expr =
  let dep = ds.dep in
  let rename x =
    match
      List.find_opt (fun (orig, _) -> orig = x) (List.combine ds.tgt_orig_iters dep.tgt_iters)
    with
    | Some (_, renamed) -> renamed
    | None -> x
  in
  Linexpr.sub (Linexpr.rename rename tgt_expr) src_expr

let validity ?slack ~dim ds =
  let coef_of, const = delta_template ~dim ds in
  let const =
    match slack with
    | None -> const
    | Some v -> Linexpr.add_term Q.minus_one v const
  in
  Farkas.nonneg_on ~coef_of ~const ds.band_rel

let coincidence ~dim ds =
  if Polyhedron.is_empty ds.active_rel then []
  else begin
    let coef_of, const = delta_template ~dim ds in
    let neg_coef v = Linexpr.neg (coef_of v) in
    Farkas.nonneg_on ~coef_of ~const ds.active_rel
    @ Farkas.nonneg_on ~coef_of:neg_coef ~const:(Linexpr.neg const) ds.active_rel
  end

let proximity ~dim ~params ds =
  if Polyhedron.is_empty ds.active_rel then []
  else begin
    let coef_of, const = delta_template ~dim ds in
    (* u . p + w - delta >= 0.  Parameters appear both as relation variables
       (with schedule-coefficient multipliers) and in the bound. *)
    let bound_coef v =
      if List.mem v params then Linexpr.add_term Q.one (Space.bound_u v) (Linexpr.neg (coef_of v))
      else Linexpr.neg (coef_of v)
    in
    let bound_const = Linexpr.add_term Q.one Space.bound_w (Linexpr.neg const) in
    Farkas.nonneg_on ~coef_of:bound_coef ~const:bound_const ds.active_rel
  end

let progression ?(negate = false) ~dim ~stmt ~prev_iter_rows () =
  let iters = stmt.Ir.Stmt.iters in
  let n = List.length iters in
  let basis =
    if Array.length prev_iter_rows = 0 then
      Array.to_list (Linalg.identity n)
    else Linalg.nullspace prev_iter_rows
  in
  let basis =
    if negate then List.map (Array.map Polybase.Q.neg) basis else basis
  in
  if basis = [] then None
  else begin
    let h =
      List.map
        (fun it -> Linexpr.var (Space.coef_var ~stmt:stmt.Ir.Stmt.name ~dim (Space.Iter it)))
        iters
    in
    let dot row =
      List.fold_left2
        (fun acc coeff e -> Linexpr.add acc (Linexpr.scale coeff e))
        Linexpr.zero (Array.to_list row) h
    in
    let per_row = List.map (fun row -> Constr.ge0 (dot row)) basis in
    let total = List.fold_left (fun acc row -> Linexpr.add acc (dot row)) Linexpr.zero basis in
    Some (Constr.ge0 (Linexpr.add total (Linexpr.const_int (-1))) :: per_row)
  end

let var_bounds ~dim ~stmts ~params ~coef_bound ~const_bound =
  let for_stmt (s : Ir.Stmt.t) =
    let name = s.Ir.Stmt.name in
    let iter_bounds =
      List.concat_map
        (fun it ->
          let v = Space.coef_var ~stmt:name ~dim (Space.Iter it) in
          [ Constr.lower_bound v 0; Constr.upper_bound v coef_bound ])
        s.Ir.Stmt.iters
    in
    let param_bounds =
      List.concat_map
        (fun p ->
          let v = Space.coef_var ~stmt:name ~dim (Space.Param p) in
          [ Constr.lower_bound v 0; Constr.upper_bound v coef_bound ])
        params
    in
    let cv = Space.coef_var ~stmt:name ~dim Space.Const in
    iter_bounds @ param_bounds
    @ [ Constr.lower_bound cv 0; Constr.upper_bound cv const_bound ]
  in
  let bound_vars =
    Constr.lower_bound Space.bound_w 0
    :: List.map (fun p -> Constr.lower_bound (Space.bound_u p) 0) params
  in
  bound_vars @ List.concat_map for_stmt stmts

let objectives ~dim ~stmts ~params =
  let sum_over f = List.fold_left (fun acc x -> Linexpr.add acc (f x)) Linexpr.zero in
  let u_sum = sum_over (fun p -> Linexpr.var (Space.bound_u p)) params in
  let w = Linexpr.var Space.bound_w in
  let param_sum =
    sum_over
      (fun (s : Ir.Stmt.t) ->
        sum_over
          (fun p -> Linexpr.var (Space.coef_var ~stmt:s.Ir.Stmt.name ~dim (Space.Param p)))
          params)
      stmts
  in
  let const_sum =
    sum_over
      (fun (s : Ir.Stmt.t) ->
        Linexpr.var (Space.coef_var ~stmt:s.Ir.Stmt.name ~dim Space.Const))
      stmts
  in
  (* Position-weighted iterator sum: ties broken toward the original loop
     order, emulating isl's preference for identity-like schedules. *)
  let iter_weighted =
    sum_over
      (fun (s : Ir.Stmt.t) ->
        List.fold_left
          (fun (acc, j) it ->
            ( Linexpr.add_term (Q.of_int (j + 1))
                (Space.coef_var ~stmt:s.Ir.Stmt.name ~dim (Space.Iter it))
                acc,
              j + 1 ))
          (Linexpr.zero, 0) s.Ir.Stmt.iters
        |> fst)
      stmts
  in
  let base = [ w; param_sum; const_sum; iter_weighted ] in
  if params = [] then base else u_sum :: base

let ilp_vars ~dim ~stmts ~params =
  List.concat_map
    (fun (s : Ir.Stmt.t) ->
      let name = s.Ir.Stmt.name in
      (Space.coef_var ~stmt:name ~dim Space.Const
       :: List.map (fun it -> Space.coef_var ~stmt:name ~dim (Space.Iter it)) s.Ir.Stmt.iters)
      @ List.map (fun p -> Space.coef_var ~stmt:name ~dim (Space.Param p)) params)
    stmts
