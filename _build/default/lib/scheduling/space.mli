(** Naming of scheduling-coefficient variables.

    The scheduler searches for the entries of each statement's
    transformation matrix [T_S] (Section III-B).  Every entry is an ILP
    variable; this module fixes the naming scheme so that constraint
    builders, influence trees (which are constructed by a separate
    non-linear optimizer) and the scheduler itself all agree on which
    variable denotes which coefficient. *)

type coeff =
  | Iter of string  (** coefficient of a statement iterator *)
  | Param of string  (** coefficient of a global parameter *)
  | Const  (** the constant (affine) part *)

val coef_var : stmt:string -> dim:int -> coeff -> string
(** The ILP variable holding coefficient [coeff] of scheduling dimension
    [dim] for statement [stmt]. *)

val bound_w : string
(** The [w] variable of the proximity bound [u . p + w] (equation 2). *)

val bound_u : string -> string
(** The [u] variable associated with a parameter. *)

val parse_coef_var : string -> (string * int * coeff) option
(** Inverse of {!coef_var}, for pretty-printing solver output. *)
