(** The affine form of Farkas' lemma (Feautrier).

    An affine function is non-negative everywhere on a polyhedron iff it is
    a non-negative affine combination of the polyhedron's constraints.  This
    turns universally-quantified conditions such as the validity constraint
    (equation 1) into finitely many affine constraints on the scheduling
    coefficients; the Farkas multipliers are then eliminated with
    Fourier-Motzkin, as in Pluto. *)

open Polyhedra

val nonneg_on :
  coef_of:(string -> Linexpr.t) ->
  const:Linexpr.t ->
  Polyhedron.t ->
  Constr.t list
(** [nonneg_on ~coef_of ~const p] is a set of constraints on the unknowns
    appearing in the coefficient expressions, equivalent to:

    for every point [x] of [p]:
    [sum_v coef_of v * x_v + const >= 0].

    [coef_of v] must be given for every variable [v] of [p] (and is an
    affine expression over the scheduling-coefficient unknowns).  [p] must
    not be empty. *)
