open Polyhedra

type dim_kind =
  | Loop of { coincident : bool }
  | Scalar

type row = {
  kind : dim_kind;
  exprs : (string * Linexpr.t) list;
}

type t = {
  kernel_name : string;
  stmt_names : string list;
  rows : row list;
  annotations : (string * string) list;
}

let dims t = List.length t.rows

let expr_for t ~dim ~stmt =
  let row = List.nth t.rows dim in
  List.assoc stmt row.exprs

let date t ~stmt env =
  List.map (fun row -> Linexpr.eval env (List.assoc stmt row.exprs)) t.rows

let stmt_matrix t ~stmt ~iters =
  let rows =
    List.map
      (fun row ->
        let e = List.assoc stmt row.exprs in
        Array.of_list (List.map (fun it -> Linexpr.coef e it) iters))
      t.rows
  in
  Array.of_list rows

let annotation t key = List.assoc_opt key t.annotations

let instantiate params t =
  let subst e =
    List.fold_left
      (fun e (p, v) -> Linexpr.subst p (Linexpr.const_int v) e)
      e params
  in
  { t with
    rows =
      List.map
        (fun row -> { row with exprs = List.map (fun (s, e) -> (s, subst e)) row.exprs })
        t.rows
  }

let add_annotations t kvs = { t with annotations = kvs @ t.annotations }

let is_trivial_row row ~stmt =
  match List.assoc_opt stmt row.exprs with
  | None -> true
  | Some e -> Linexpr.vars e = []

let kind_string = function
  | Loop { coincident = true } -> "loop(parallel)"
  | Loop { coincident = false } -> "loop"
  | Scalar -> "scalar"

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule of %s:@," t.kernel_name;
  List.iteri
    (fun d row ->
      Format.fprintf fmt "  dim %d [%s]: %s@," d (kind_string row.kind)
        (String.concat "  "
           (List.map
              (fun (s, e) -> Printf.sprintf "%s: %s" s (Linexpr.to_string e))
              row.exprs)))
    t.rows;
  (match t.annotations with
   | [] -> ()
   | kvs ->
     Format.fprintf fmt "  annotations: %s@,"
       (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)));
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
