(** Computed multidimensional affine schedules.

    A schedule assigns every statement a list of affine expressions over its
    iterators (one per scheduling dimension, outermost first): the logical
    date of Section III-B.  Rows also carry the properties codegen needs
    (coincidence for parallel marking, scalar rows for statement
    interleaving) and the annotations deposited by the influence tree's
    leaf (vectorization preparation). *)

open Polybase
open Polyhedra

type dim_kind =
  | Loop of { coincident : bool }
      (** a real loop dimension; [coincident] means no active dependence is
          carried: the loop can be marked parallel *)
  | Scalar  (** statement interleaving inserted by SCC separation *)

type row = {
  kind : dim_kind;
  exprs : (string * Linexpr.t) list;
      (** per-statement scheduling expression over that statement's
          iterators (and parameters) *)
}

type t = {
  kernel_name : string;
  stmt_names : string list;
  rows : row list;  (** outermost first *)
  annotations : (string * string) list;
}

val dims : t -> int

val expr_for : t -> dim:int -> stmt:string -> Linexpr.t
(** @raise Not_found if the statement is unknown. *)

val date : t -> stmt:string -> (string -> Q.t) -> Q.t list
(** Logical date of one statement instance. *)

val stmt_matrix : t -> stmt:string -> iters:string list -> Q.t array array
(** The iterator part [H_S] of the transformation matrix: one row per
    schedule dimension, one column per iterator. *)

val annotation : t -> string -> string option

val instantiate : (string * int) list -> t -> t
(** Substitutes concrete values for global parameters in every row; pair
    with {!Ir.Kernel.instantiate} before code generation. *)

val add_annotations : t -> (string * string) list -> t

val is_trivial_row : row -> stmt:string -> bool
(** Whether the row's expression for a statement involves no iterator. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
