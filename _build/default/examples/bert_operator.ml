(* The real fused operator behind the paper's running example:
   fused_mul_sub_mul_tensoradd from BERT (named in Fig. 2's caption).

   Demonstrates the full four-version comparison (isl / tvm / novec / infl)
   on a deep element-wise fusion, where the influenced scheduler's win
   comes from explicit vector types rather than loop restructuring — the
   BERT row of Table II.

   Run with:  dune exec examples/bert_operator.exe *)

let () =
  let kernel = Ops.Classics.fused_mul_sub_mul_tensoradd ~n:128 ~m:768 () in
  Format.printf "%a@." Ir.Kernel.pp kernel;

  let r = Harness.Eval.evaluate_op ~name:"fused_mul_sub_mul_tensoradd" kernel in
  Format.printf
    "simulated V100 execution times:@.  isl   %8.2f us@.  tvm   %8.2f us  (unfused: every statement a kernel, intermediates in DRAM)@.  novec %8.2f us@.  infl  %8.2f us@."
    r.Harness.Eval.isl_us r.tvm_us r.novec_us r.infl_us;
  Format.printf "speedups over isl: tvm %.2fx, novec %.2fx, infl %.2fx@."
    (r.isl_us /. r.tvm_us) (r.isl_us /. r.novec_us) (r.isl_us /. r.infl_us);

  (* The generated code for the influenced version: one fused kernel, the
     column loop rewritten as a float4 strip and mapped on threadIdx.x. *)
  let tree = Vectorizer.Treegen.influence_for kernel in
  let sched, _ = Scheduling.Scheduler.schedule ~influence:tree kernel in
  let compiled = Codegen.Compile.lower ~vectorize:true sched kernel in
  Format.printf "@.influenced kernel:@.%s" (Codegen.Cuda.emit compiled);

  (* And what the tvm comparator does instead: four separate kernels. *)
  Format.printf "@.tvm-style compilation: %d separate kernels@."
    (List.length (Baselines.Tvm.compile kernel))
