(* Quickstart: build a fused operator with the Build DSL, schedule it with
   and without constraint injection, generate code, check semantics, and
   compare simulated GPU execution times.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A fused operator: scale then add, over a 256 x 512 tensor. *)
  let n, m = (256, 512) in
  let open Ir in
  let kernel =
    let open Expr.Infix in
    Build.kernel "quickstart"
      ~tensors:
        [ Build.tensor "input" [ n; m ];
          Build.tensor "scaled" [ n; m ];
          Build.tensor "output" [ n; m ]
        ]
      ~stmts:
        [ Build.stmt "Scale"
            ~iters:[ ("i0", n); ("j0", m) ]
            ~write:(Build.access "scaled" [ "i0"; "j0" ])
            ~rhs:(Expr.load (Build.access "input" [ "i0"; "j0" ]) * Expr.const 0.5);
          Build.stmt "Add"
            ~iters:[ ("i1", n); ("j1", m) ]
            ~write:(Build.access "output" [ "i1"; "j1" ])
            ~rhs:
              (Expr.load (Build.access "scaled" [ "i1"; "j1" ])
              + Expr.load (Build.access "input" [ "i1"; "j1" ]))
        ]
  in
  Format.printf "operator:@.%a@." Kernel.pp kernel;

  (* 2. Dependences: the producer/consumer flow on [scaled]. *)
  let deps = Deps.Analysis.dependences kernel in
  Format.printf "dependences:@.%a@." Deps.Analysis.pp_all deps;

  (* 3. Baseline (isl-like) schedule. *)
  let baseline, _ = Scheduling.Scheduler.schedule kernel in
  Format.printf "baseline schedule:@.%a@." Scheduling.Schedule.pp baseline;

  (* 4. The non-linear optimizer builds an influence constraint tree; the
        scheduler honours it. *)
  let tree = Vectorizer.Treegen.influence_for kernel in
  Format.printf "influence tree (%d branches):@.%a@." (List.length tree)
    Scheduling.Influence.pp tree;
  let influenced, stats = Scheduling.Scheduler.schedule ~influence:tree kernel in
  Format.printf "influenced schedule:@.%a@." Scheduling.Schedule.pp influenced;
  Format.printf "scheduler stats: %d ILP solves, abandoned: %b@."
    stats.Scheduling.Scheduler.ilp_solves stats.influence_abandoned;

  (* 5. Lower to a mapped, vectorized AST and print CUDA-like code. *)
  let compiled = Codegen.Compile.lower ~vectorize:true influenced kernel in
  print_string (Codegen.Cuda.emit compiled);

  (* 6. Semantics: interpret original vs generated code. *)
  let m1 = Interp.randomize kernel in
  let m2 = Interp.copy m1 in
  Interp.run_original kernel m1;
  Interp.run_ast kernel compiled.Codegen.Compile.ast m2;
  Format.printf "semantics: %s@."
    (if Interp.equal m1 m2 then "MATCH" else "MISMATCH");

  (* 7. Simulated execution times. *)
  let time sched vectorize =
    Gpusim.Sim.time_us
      (Gpusim.Sim.run (Codegen.Compile.lower ~vectorize sched kernel))
  in
  let t_isl = time baseline false in
  let t_infl = time influenced true in
  Format.printf "simulated V100: isl %.2fus, influenced %.2fus (%.2fx)@."
    t_isl t_infl (t_isl /. t_infl)
