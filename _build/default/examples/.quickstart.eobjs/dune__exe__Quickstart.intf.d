examples/quickstart.mli:
