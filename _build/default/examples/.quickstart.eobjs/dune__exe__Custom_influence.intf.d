examples/custom_influence.mli:
