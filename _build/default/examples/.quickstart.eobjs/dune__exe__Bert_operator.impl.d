examples/bert_operator.ml: Baselines Codegen Format Harness Ir List Ops Scheduling Vectorizer
