examples/custom_influence.ml: Codegen Constr Deps Format Influence Ir Legality Linexpr Ops Option Polyhedra Schedule Scheduler Scheduling Space
