examples/quickstart.ml: Build Codegen Deps Expr Format Gpusim Interp Ir Kernel List Scheduling Vectorizer
