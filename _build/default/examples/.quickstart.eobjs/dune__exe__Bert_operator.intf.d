examples/bert_operator.mli:
