examples/resnet_transpose.ml: Codegen Format Gpusim Interp Ir Ops Scheduling Vectorizer
