examples/resnet_transpose.mli:
