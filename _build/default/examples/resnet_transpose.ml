(* The ResNet case: a layout permutation whose incoming loop order is
   hostile (the innermost loop strides every access).  The baseline
   scheduler has no access-pattern cost model and keeps the bad order; the
   non-linear optimizer reorders toward a unit-stride innermost dimension,
   prepares it for float4, and the mapping puts the strip on threadIdx.x:
   coalescing plus vector types — the largest speedups of Table II.

   Run with:  dune exec examples/resnet_transpose.exe *)

let () =
  let kernel = Ops.Classics.permute_outer_bad ~a:64 ~b:196 ~c:64 () in
  Format.printf "%a@." Ir.Kernel.pp kernel;

  let show label sched vectorize =
    let c = Codegen.Compile.lower ~vectorize ~vec_min_parallel:2048 sched kernel in
    let r = Gpusim.Sim.run c in
    Format.printf "@.--- %s ---@.%a@.%s" label Scheduling.Schedule.pp sched
      (Codegen.Cuda.emit c);
    Format.printf "simulated: %a@." Gpusim.Sim.pp r;
    Gpusim.Sim.time_us r
  in

  let isl_sched, _ = Scheduling.Scheduler.schedule kernel in
  let t_isl = show "isl baseline (keeps the hostile order)" isl_sched false in

  let tree = Vectorizer.Treegen.influence_for kernel in
  let infl_sched, _ = Scheduling.Scheduler.schedule ~influence:tree kernel in
  let t_novec = show "influenced, no vector types (novec)" infl_sched false in
  let t_infl = show "influenced + explicit float4 (infl)" infl_sched true in

  Format.printf "@.speedups over isl: novec %.2fx, infl %.2fx@."
    (t_isl /. t_novec) (t_isl /. t_infl);

  (* semantic validation at a small size *)
  let small = Ops.Classics.permute_outer_bad ~a:4 ~b:6 ~c:8 () in
  let tree = Vectorizer.Treegen.influence_for small in
  let sched, _ = Scheduling.Scheduler.schedule ~influence:tree small in
  let c = Codegen.Compile.lower ~vectorize:true sched small in
  let m1 = Interp.randomize small in
  let m2 = Interp.copy m1 in
  Interp.run_original small m1;
  Interp.run_ast small c.Codegen.Compile.ast m2;
  Format.printf "semantics (4x6x8): %s@."
    (if Interp.equal m1 m2 then "MATCH" else "MISMATCH")
