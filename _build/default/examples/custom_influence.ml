(* Driving the scheduler with a hand-written influence constraint tree.

   The tree abstraction is not tied to the vectorization optimizer: any
   external decision procedure can express prioritized scheduling wishes.
   Here we force a loop interchange on a kernel with no dependences, ask
   for an impossible alternative first (to show the sibling fallback), and
   attach a payload that survives to the final schedule.

   Run with:  dune exec examples/custom_influence.exe *)

open Polyhedra
open Scheduling

let coef ~stmt ~dim iter = Linexpr.var (Space.coef_var ~stmt ~dim (Space.Iter iter))

let () =
  let kernel = Ops.Classics.cast_transpose ~n:64 ~m:64 () in
  Format.printf "%a@." Ir.Kernel.pp kernel;

  (* Branch 1 (highest priority): impossible on purpose — it pins the first
     scheduling dimension of T to the zero row, which progression forbids. *)
  let impossible =
    Influence.node ~label:"impossible"
      [ Constr.eq0 (coef ~stmt:"T" ~dim:0 "i");
        Constr.eq0 (coef ~stmt:"T" ~dim:0 "j")
      ]
  in
  (* Branch 2: interchange — j outermost, i innermost — and require the
     outer dimension to be parallel. *)
  let interchange =
    Influence.node ~label:"interchange" ~require_parallel:true
      ~payload:[ ("strategy", "interchange") ]
      [ Constr.eq (coef ~stmt:"T" ~dim:0 "j") (Linexpr.const_int 1);
        Constr.eq0 (coef ~stmt:"T" ~dim:0 "i")
      ]
  in
  let tree = [ impossible; interchange ] in
  Format.printf "influence tree:@.%a@." Influence.pp tree;

  let sched, stats = Scheduler.schedule ~influence:tree kernel in
  Format.printf "schedule:@.%a@." Schedule.pp sched;
  Format.printf "sibling fallbacks taken: %d (branch 1 was infeasible)@."
    stats.Scheduler.sibling_moves;
  Format.printf "payload carried to the schedule: strategy=%s@."
    (Option.value ~default:"?" (Schedule.annotation sched "strategy"));

  (* the interchanged schedule is still legal (trivially: no dependences),
     and codegen honours it *)
  (match Legality.check sched kernel (Deps.Analysis.dependences kernel) with
   | Ok () -> Format.printf "legality: OK@."
   | Error e -> Format.printf "legality: %s@." e);
  let compiled = Codegen.Compile.lower ~vectorize:true sched kernel in
  print_string (Codegen.Cuda.emit compiled)
